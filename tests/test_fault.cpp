// Fault-injection subsystem tests.
//
// The contract under test (see src/fault/plan.hpp):
//   1. an all-zero FaultPlan is bit-identical to the pre-fault engine —
//      every golden pin in tests/golden_cases.hpp must still hold, and no
//      fault counter may move;
//   2. a non-zero plan is deterministic: identical across repeated runs,
//      across thread counts, and across a store round-trip;
//   3. each impairment model books its own counter and emits its own
//      kFault trace record;
//   4. the plan joins the run-store key, so faulted and fault-free results
//      can never alias in the cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <string_view>

#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "golden_cases.hpp"
#include "metrics/summary.hpp"
#include "obs/jsonl_sink.hpp"
#include "store/run_store.hpp"

namespace epi {
namespace {

namespace fs = std::filesystem;

const mobility::ContactTrace& shared_trace(bool rwp) {
  static const auto trace_t =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  static const auto trace_r = exp::build_contact_trace(exp::rwp_scenario(), 42);
  return rwp ? trace_r : trace_t;
}

exp::RunSpec golden_spec(const GoldenCase& c) {
  const bool is_rwp = std::string_view(c.scenario) == "rwp";
  const auto scenario =
      is_rwp ? exp::rwp_scenario() : exp::trace_scenario();
  exp::RunSpec spec;
  spec.protocol.kind = protocol_from_string(c.protocol);
  spec.load = c.load;
  spec.replication = c.replication;
  spec.horizon = scenario.horizon();
  spec.session_gap = scenario.session_gap;
  return spec;
}

/// A mid-probability composite plan exercising all four models at once.
fault::FaultPlan composite_plan() {
  return fault::FaultPlanBuilder()
      .slot_loss(0.3)
      .truncation(0.3)
      .duty_cycle(0.4, 7'200.0)
      .control_loss(0.3)
      .build();
}

// --- contract 1: the all-zero plan changes nothing ----------------------------

class ZeroPlanGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(ZeroPlanGolden, ReproducesEveryPin) {
  const GoldenCase& c = GetParam();
  exp::RunSpec spec = golden_spec(c);
  spec.options.fault = fault::FaultPlanBuilder().build();  // explicit all-zero plan
  ASSERT_FALSE(spec.options.fault.any());
  const auto s = exp::run_single(
      spec, shared_trace(std::string_view(c.scenario) == "rwp"));

  EXPECT_DOUBLE_EQ(s.delivery_ratio, c.delivery_ratio);
  EXPECT_EQ(s.complete, c.complete);
  EXPECT_DOUBLE_EQ(s.completion_time, c.completion_time);
  EXPECT_DOUBLE_EQ(s.mean_bundle_delay, c.mean_bundle_delay);
  EXPECT_DOUBLE_EQ(s.buffer_occupancy, c.buffer_occupancy);
  EXPECT_DOUBLE_EQ(s.duplication_rate, c.duplication_rate);
  EXPECT_EQ(s.bundle_transmissions, c.bundle_transmissions);
  EXPECT_EQ(s.control_records, c.control_records);
  EXPECT_EQ(s.contacts, c.contacts);
  EXPECT_DOUBLE_EQ(s.end_time, c.end_time);
  EXPECT_EQ(s.perf.transfers, c.transfers);
  // No injector, no faults: all four counters stay zero.
  EXPECT_EQ(s.perf.slots_lost, 0u);
  EXPECT_EQ(s.perf.down_slots, 0u);
  EXPECT_EQ(s.perf.control_dropped, 0u);
  EXPECT_EQ(s.perf.contacts_truncated, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, ZeroPlanGolden, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.scenario) + "_" + info.param.protocol +
             "_" + std::to_string(info.param.load) + "_r" +
             std::to_string(info.param.replication);
    });

// --- contract 2: faulted runs are deterministic -------------------------------

TEST(FaultDeterminism, RepeatedRunsAreBitIdentical) {
  exp::RunSpec spec = golden_spec(kGolden[1]);  // trace / pq_epidemic
  spec.options.fault = composite_plan();
  const auto a = exp::run_single(spec, shared_trace(false));
  const auto b = exp::run_single(spec, shared_trace(false));
  EXPECT_TRUE(metrics::deterministic_equal(a, b));
  // The plan actually bit: at these probabilities every model must fire.
  EXPECT_GT(a.perf.slots_lost, 0u);
  EXPECT_GT(a.perf.down_slots, 0u);
  EXPECT_GT(a.perf.control_dropped, 0u);
  EXPECT_GT(a.perf.contacts_truncated, 0u);
}

TEST(FaultDeterminism, SweepIdenticalAcrossThreadCounts) {
  exp::SweepSpec spec;
  spec.scenario = exp::trace_scenario();
  spec.protocol.kind = ProtocolKind::kImmunity;
  spec.loads = {15, 25};
  spec.replications = 3;
  spec.fault = composite_plan();

  spec.threads = 1;
  const auto serial = exp::run_sweep_on(spec, shared_trace(false));
  spec.threads = 4;
  const auto parallel = exp::run_sweep_on(spec, shared_trace(false));

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    ASSERT_EQ(serial.runs[i].size(), parallel.runs[i].size());
    for (std::size_t r = 0; r < serial.runs[i].size(); ++r) {
      EXPECT_TRUE(metrics::deterministic_equal(serial.runs[i][r],
                                               parallel.runs[i][r]))
          << "load index " << i << ", replication " << r;
    }
  }
}

// --- contract 3: each model books its own counter and trace record ------------

TEST(FaultModels, SlotLossOnlyMovesSlotCounter) {
  exp::RunSpec spec = golden_spec(kGolden[0]);  // trace / pure_epidemic
  spec.options.fault = fault::FaultPlanBuilder().slot_loss(0.3).build();
  const auto s = exp::run_single(spec, shared_trace(false));
  EXPECT_GT(s.perf.slots_lost, 0u);
  EXPECT_EQ(s.perf.down_slots, 0u);
  EXPECT_EQ(s.perf.control_dropped, 0u);
  EXPECT_EQ(s.perf.contacts_truncated, 0u);
}

TEST(FaultModels, TruncationOnlyMovesTruncationCounter) {
  exp::RunSpec spec = golden_spec(kGolden[0]);
  spec.options.fault = fault::FaultPlanBuilder().truncation(0.5).build();
  const auto s = exp::run_single(spec, shared_trace(false));
  EXPECT_GT(s.perf.contacts_truncated, 0u);
  EXPECT_EQ(s.perf.slots_lost, 0u);
  EXPECT_EQ(s.perf.down_slots, 0u);
  EXPECT_EQ(s.perf.control_dropped, 0u);
}

TEST(FaultModels, DutyCycleOnlyMovesDownSlotCounter) {
  exp::RunSpec spec = golden_spec(kGolden[0]);
  spec.options.fault = fault::FaultPlanBuilder().duty_cycle(0.5, 7'200.0).build();
  const auto s = exp::run_single(spec, shared_trace(false));
  EXPECT_GT(s.perf.down_slots, 0u);
  EXPECT_EQ(s.perf.slots_lost, 0u);
  EXPECT_EQ(s.perf.control_dropped, 0u);
  EXPECT_EQ(s.perf.contacts_truncated, 0u);
}

TEST(FaultModels, ControlLossOnlyMovesControlCounter) {
  exp::RunSpec spec = golden_spec(kGolden[6]);  // trace / immunity
  spec.options.fault = fault::FaultPlanBuilder().control_loss(0.5).build();
  const auto s = exp::run_single(spec, shared_trace(false));
  EXPECT_GT(s.perf.control_dropped, 0u);
  EXPECT_EQ(s.perf.slots_lost, 0u);
  EXPECT_EQ(s.perf.down_slots, 0u);
  EXPECT_EQ(s.perf.contacts_truncated, 0u);
}

TEST(FaultModels, EveryModelEmitsItsTraceRecord) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  exp::RunSpec spec = golden_spec(kGolden[1]);  // trace / pq_epidemic
  spec.options.fault = composite_plan();
  spec.trace_sink = &sink;
  (void)exp::run_single(spec, shared_trace(false));
  const std::string trace = out.str();
  EXPECT_NE(trace.find(R"("ev":"fault")"), std::string::npos);
  EXPECT_NE(trace.find(R"("fault":"slot_loss")"), std::string::npos);
  EXPECT_NE(trace.find(R"("fault":"down_slot")"), std::string::npos);
  EXPECT_NE(trace.find(R"("fault":"control_drop")"), std::string::npos);
  EXPECT_NE(trace.find(R"("fault":"truncation")"), std::string::npos);
}

// --- contract 4: the plan joins the store key and round-trips -----------------

TEST(FaultStore, PlanChangesKeyAndRoundTrips) {
  const auto scenario = exp::trace_scenario();
  exp::RunSpec spec = golden_spec(kGolden[1]);
  spec.load = 25;

  const std::string clean_key = exp::store_key(scenario, spec);
  spec.options.fault = composite_plan();
  const std::string faulted_key = exp::store_key(scenario, spec);
  EXPECT_NE(clean_key, faulted_key);
  EXPECT_NE(faulted_key.find("fault{"), std::string::npos);
  // Every field joins the key, active or not.
  EXPECT_NE(clean_key.find("fault{"), std::string::npos);

  const auto fresh = exp::run_single(spec, shared_trace(false));
  const fs::path dir =
      fs::path(::testing::TempDir()) / "epi_fault_store_roundtrip";
  fs::remove_all(dir);
  {
    store::RunStore writer(dir);
    writer.put(faulted_key, fresh);
  }
  store::RunStore reader(dir);
  const auto cached = reader.find(faulted_key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(metrics::deterministic_equal(fresh, *cached));
  EXPECT_EQ(cached->perf.slots_lost, fresh.perf.slots_lost);
  EXPECT_EQ(cached->perf.down_slots, fresh.perf.down_slots);
  EXPECT_EQ(cached->perf.control_dropped, fresh.perf.control_dropped);
  EXPECT_EQ(cached->perf.contacts_truncated, fresh.perf.contacts_truncated);
  EXPECT_FALSE(reader.find(clean_key).has_value());
  fs::remove_all(dir);
}

// --- injector unit behavior ---------------------------------------------------

TEST(FaultInjector, InactiveModelsDrawNothingAndAllowEverything) {
  const fault::Injector injector({}, 42, 25, 0);
  fault::Injector mutable_injector({}, 42, 25, 0);
  EXPECT_TRUE(injector.node_up(0, 0.0));
  EXPECT_TRUE(injector.node_up(7, 123'456.0));
  EXPECT_FALSE(mutable_injector.drop_control());
  EXPECT_FALSE(mutable_injector.lose_slot());
  mobility::Contact contact{0, 1, 1'000.0, 2'000.0};
  EXPECT_FALSE(mutable_injector.truncate(contact));
  EXPECT_DOUBLE_EQ(contact.end, 2'000.0);
}

TEST(FaultInjector, DutyPhaseIsClosedFormAndPeriodic) {
  fault::FaultPlan plan;
  plan.duty_off_fraction = 0.5;
  plan.duty_period = 1'000.0;
  const fault::Injector injector(plan, 42, 25, 0);
  for (const NodeId node : {NodeId{0}, NodeId{5}, NodeId{11}}) {
    for (const SimTime t : {0.0, 250.0, 777.0}) {
      EXPECT_EQ(injector.node_up(node, t),
                injector.node_up(node, t + plan.duty_period))
          << "node " << node << " t " << t;
    }
  }
}

}  // namespace
}  // namespace epi
