// Shared fixtures and helpers for the test suite.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "mobility/contact_trace.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

namespace epi::test {

/// Builds a trace from a brace-list of {a, b, start, end} tuples.
inline mobility::ContactTrace make_trace(
    std::initializer_list<mobility::Contact> contacts) {
  return mobility::ContactTrace(std::vector<mobility::Contact>(contacts));
}

/// A minimal 3-node config: node 0 -> node 2, relay node 1.
inline SimulationConfig small_config(std::uint32_t load = 1,
                                     std::uint32_t nodes = 3) {
  SimulationConfig config;
  config.node_count = nodes;
  config.buffer_capacity = 10;
  config.load = load;
  config.source = 0;
  config.destination = nodes - 1;
  config.horizon = 100'000.0;
  return config;
}

/// Runs one engine to completion and returns the summary.
inline metrics::RunSummary run_engine(const SimulationConfig& config,
                                      const mobility::ContactTrace& trace,
                                      std::uint64_t seed = 1) {
  routing::Engine engine(config, trace,
                         routing::make_protocol(config.protocol), seed);
  return engine.run();
}

}  // namespace epi::test
