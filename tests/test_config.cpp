#include "core/config.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace epi {
namespace {

TEST(ProtocolNames, RoundTripAllKinds) {
  for (const auto kind :
       {ProtocolKind::kPureEpidemic, ProtocolKind::kPqEpidemic,
        ProtocolKind::kFixedTtl, ProtocolKind::kEncounterCount,
        ProtocolKind::kImmunity, ProtocolKind::kDynamicTtl,
        ProtocolKind::kEcTtl, ProtocolKind::kCumulativeImmunity,
        ProtocolKind::kDirectDelivery, ProtocolKind::kSprayAndWait}) {
    EXPECT_EQ(protocol_from_string(to_string(kind)), kind);
  }
}

TEST(ProtocolNames, UnknownNameThrows) {
  EXPECT_THROW((void)protocol_from_string("sprays_and_waits"), ConfigError);
  EXPECT_THROW((void)protocol_from_string(""), ConfigError);
}

TEST(ProtocolParams, DefaultsAreValid) {
  EXPECT_NO_THROW(ProtocolParams{}.validate());
}

TEST(ProtocolParams, RejectsBadP) {
  ProtocolParams p;
  p.p = -0.1;
  EXPECT_THROW(p.validate(), ConfigError);
  p.p = 1.1;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, RejectsBadQ) {
  ProtocolParams p;
  p.q = 2.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, AcceptsBoundaryPq) {
  ProtocolParams p;
  p.p = 0.0;
  p.q = 1.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(ProtocolParams, RejectsNonPositiveTtl) {
  ProtocolParams p;
  p.fixed_ttl = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, RejectsNonPositiveMultiplier) {
  ProtocolParams p;
  p.ttl_multiplier = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, InfiniteDynamicFallbackIsValid) {
  ProtocolParams p;
  p.dynamic_ttl_fallback = kNoExpiry;
  EXPECT_NO_THROW(p.validate());
}

TEST(ProtocolParams, RejectsNegativeEcTtlBase) {
  ProtocolParams p;
  p.ec_ttl_base = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, RejectsZeroEcTtlStep) {
  ProtocolParams p;
  p.ec_ttl_step = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, RejectsZeroSprayCopies) {
  ProtocolParams p;
  p.spray_copies = 0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProtocolParams, RejectsZeroImmunityRecords) {
  ProtocolParams p;
  p.immunity_records_per_contact = 0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(SimulationConfig, DefaultsAreValid) {
  EXPECT_NO_THROW(SimulationConfig{}.validate());
}

TEST(SimulationConfig, RejectsTooFewNodes) {
  SimulationConfig c;
  c.node_count = 1;
  c.source = 0;
  c.destination = 0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsZeroBuffer) {
  SimulationConfig c;
  c.buffer_capacity = 0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsNonPositiveSlot) {
  SimulationConfig c;
  c.slot_seconds = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsNonPositiveHorizon) {
  SimulationConfig c;
  c.horizon = -5.0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsZeroLoad) {
  SimulationConfig c;
  c.load = 0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsOutOfRangeEndpoints) {
  SimulationConfig c;
  c.source = 12;
  EXPECT_THROW(c.validate(), ConfigError);
  c.source = 0;
  c.destination = 99;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsEqualSourceAndDestination) {
  SimulationConfig c;
  c.source = 3;
  c.destination = 3;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, RejectsNonPositiveSessionGap) {
  SimulationConfig c;
  c.encounter_session_gap = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(SimulationConfig, ValidatesNestedProtocolParams) {
  SimulationConfig c;
  c.protocol.p = 5.0;
  EXPECT_THROW(c.validate(), ConfigError);
}

}  // namespace
}  // namespace epi
