#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace epi {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, DeriveIsDeterministic) {
  Rng a = Rng::derive(42, 1, 2, 3);
  Rng b = Rng::derive(42, 1, 2, 3);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DeriveTagsMatter) {
  EXPECT_NE(Rng::derive(42, 1, 2, 3).next(), Rng::derive(42, 1, 2, 4).next());
  EXPECT_NE(Rng::derive(42, 1, 2, 3).next(), Rng::derive(42, 1, 3, 2).next());
  EXPECT_NE(Rng::derive(42, 1, 2, 3).next(), Rng::derive(43, 1, 2, 3).next());
  // Tag order matters (a, b) != (b, a).
  EXPECT_NE(Rng::derive(42, 1, 2).next(), Rng::derive(42, 2, 1).next());
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng r(11);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(n), n);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng r(19);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng r(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.between(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(37);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(50.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng r(41);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng r(43);
  const int n = 100'001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = r.lognormal_median(500.0, 1.0);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 500.0, 25.0);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(47);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(r.lognormal_median(100.0, 2.0), 0.0);
  }
}

TEST(Rng, WorksWithStdShuffle) {
  Rng r(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  std::shuffle(v.begin(), v.end(), r);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);  // same multiset
}

}  // namespace
}  // namespace epi
