#include "dtn/buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace epi::dtn {
namespace {

StoredBundle copy_of(BundleId id, std::uint32_t ec = 0,
                     SimTime stored_at = 0.0) {
  StoredBundle c;
  c.id = id;
  c.ec = ec;
  c.stored_at = stored_at;
  return c;
}

TEST(BundleBuffer, StartsEmpty) {
  const BundleBuffer buffer(10);
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer.full());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 10u);
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 0.0);
}

TEST(BundleBuffer, InsertAndFind) {
  BundleBuffer buffer(10);
  buffer.insert(copy_of(5, 3));
  EXPECT_TRUE(buffer.contains(5));
  ASSERT_NE(buffer.find(5), nullptr);
  EXPECT_EQ(buffer.find(5)->ec, 3u);
  EXPECT_EQ(buffer.find(6), nullptr);
}

TEST(BundleBuffer, ConstFind) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  const BundleBuffer& cref = buffer;
  EXPECT_NE(cref.find(1), nullptr);
  EXPECT_EQ(cref.find(2), nullptr);
}

TEST(BundleBuffer, FullAtCapacity) {
  BundleBuffer buffer(3);
  for (BundleId id = 1; id <= 3; ++id) buffer.insert(copy_of(id));
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 1.0);
}

TEST(BundleBuffer, OccupancyIsFraction) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 0.25);
  buffer.insert(copy_of(2));
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 0.5);
}

TEST(BundleBuffer, RemoveReturnsCopy) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(7, 9));
  const auto removed = buffer.remove(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->ec, 9u);
  EXPECT_FALSE(buffer.contains(7));
}

TEST(BundleBuffer, RemoveMissingIsNullopt) {
  BundleBuffer buffer(4);
  EXPECT_FALSE(buffer.remove(1).has_value());
}

TEST(BundleBuffer, EntriesKeepFifoOrder) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(3));
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(2));
  buffer.remove(1);
  const auto entries = buffer.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 3u);
  EXPECT_EQ(entries[1].id, 2u);
}

TEST(BundleBuffer, InsertIntoFullBufferThrows) {
  // Enforced in every build mode: the admission seam must never overfill a
  // buffer silently.
  BundleBuffer buffer(2);
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(2));
  EXPECT_THROW(buffer.insert(copy_of(3)), Error);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(BundleBuffer, InsertDuplicateThrows) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  EXPECT_THROW(buffer.insert(copy_of(1)), Error);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(BundleBuffer, SelectVictimLargestEcEmpty) {
  // min_ec = 0 replicates the legacy highest_ec_bundle() semantics: every
  // copy evictable, highest EC wins.
  const BundleBuffer buffer(4);
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropLargestEc, 0, {}}),
            kInvalidBundle);
}

TEST(BundleBuffer, SelectVictimLargestEcPicksMaximum) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(1, 2));
  buffer.insert(copy_of(2, 7));
  buffer.insert(copy_of(3, 4));
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropLargestEc, 0, {}}),
            2u);
}

TEST(BundleBuffer, SelectVictimLargestEcTieBreaksToOldest) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(4, 7, 1.0));
  buffer.insert(copy_of(9, 7, 2.0));
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropLargestEc, 0, {}}),
            4u);
}

TEST(BundleBuffer, SelectVictimLargestEcRespectsMinEc) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(1, 0));
  buffer.insert(copy_of(2, 3));
  buffer.insert(copy_of(3, 5));
  // min_ec above every EC: all copies protected, no victim.
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropLargestEc, 6, {}}),
            kInvalidBundle);
  // min_ec = 1 protects exactly the never-transmitted copy.
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropLargestEc, 1, {}}),
            3u);
}

TEST(BundleBuffer, SelectVictimDropTailNeverPicks) {
  BundleBuffer buffer(2);
  buffer.insert(copy_of(1, 9));
  buffer.insert(copy_of(2, 9));
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropTail, 1, {}}),
            kInvalidBundle);
}

TEST(BundleBuffer, SelectVictimDropOldestPicksFifoHead) {
  BundleBuffer buffer(3);
  buffer.insert(copy_of(5));
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(3));
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropOldest, 1, {}}), 5u);
  buffer.remove(5);
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropOldest, 1, {}}), 1u);
}

TEST(BundleBuffer, SelectVictimDropOldestEmpty) {
  const BundleBuffer buffer(1);
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropOldest, 1, {}}),
            kInvalidBundle);
}

TEST(BundleBuffer, SelectVictimMostReplicated) {
  BundleBuffer buffer(3);
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(2));
  buffer.insert(copy_of(3));
  // Dense by id; index 0 unused.
  const std::vector<std::uint32_t> counts{0, 2, 5, 3};
  EXPECT_EQ(buffer.select_victim(
                {EvictionPolicy::kDropMostReplicated, 1, counts}),
            2u);
}

TEST(BundleBuffer, SelectVictimMostReplicatedTieBreaksToOldest) {
  BundleBuffer buffer(3);
  buffer.insert(copy_of(3));
  buffer.insert(copy_of(1));
  const std::vector<std::uint32_t> counts{0, 4, 0, 4};
  EXPECT_EQ(buffer.select_victim(
                {EvictionPolicy::kDropMostReplicated, 1, counts}),
            3u);
}

TEST(BundleBuffer, SelectVictimMostReplicatedEmptyEstimate) {
  // No estimate: all counts read as zero, ties resolve to the FIFO head.
  BundleBuffer buffer(2);
  buffer.insert(copy_of(7));
  buffer.insert(copy_of(2));
  EXPECT_EQ(buffer.select_victim(
                {EvictionPolicy::kDropMostReplicated, 1, {}}),
            7u);
}

TEST(BundleBuffer, SelectVictimCapacityOne) {
  BundleBuffer buffer(1);
  buffer.insert(copy_of(1, 3));
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropOldest, 1, {}}), 1u);
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropLargestEc, 1, {}}),
            1u);
  EXPECT_EQ(buffer.select_victim({EvictionPolicy::kDropTail, 1, {}}),
            kInvalidBundle);
}

TEST(BundleBuffer, MutationThroughFindSticks) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  buffer.find(1)->ec = 42;
  EXPECT_EQ(buffer.find(1)->ec, 42u);
}

TEST(BundleBuffer, OfferOrderUntransmittedFirstById) {
  BundleBuffer buffer(10);
  buffer.insert(copy_of(7));
  buffer.insert(copy_of(2));
  buffer.insert(copy_of(5));
  const auto order = buffer.offer_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].id, 2u);
  EXPECT_EQ(order[1].id, 5u);
  EXPECT_EQ(order[2].id, 7u);
}

TEST(BundleBuffer, OfferOrderTransmittedSinkBehindFresh) {
  // Never-transmitted bundles (by id), then transmitted ones by least
  // recent transmission — the paper's "newest copies first" offer rule.
  BundleBuffer buffer(10);
  for (BundleId id = 1; id <= 4; ++id) buffer.insert(copy_of(id));
  buffer.mark_transmitted(1, 50.0);
  buffer.mark_transmitted(3, 20.0);
  const auto order = buffer.offer_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].id, 2u);  // fresh
  EXPECT_EQ(order[1].id, 4u);  // fresh
  EXPECT_EQ(order[2].id, 3u);  // tx at 20
  EXPECT_EQ(order[3].id, 1u);  // tx at 50
}

TEST(BundleBuffer, MarkTransmittedUpdatesCopyAndReorders) {
  BundleBuffer buffer(10);
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(2));
  buffer.mark_transmitted(1, 10.0);
  EXPECT_DOUBLE_EQ(buffer.find(1)->last_tx, 10.0);
  EXPECT_TRUE(buffer.find(1)->ever_transmitted());
  EXPECT_EQ(buffer.offer_order()[0].id, 2u);
  // Re-transmission moves it to the back of the transmitted tier.
  buffer.mark_transmitted(2, 5.0);
  buffer.mark_transmitted(1, 30.0);
  EXPECT_EQ(buffer.offer_order()[0].id, 2u);
  EXPECT_EQ(buffer.offer_order()[1].id, 1u);
}

TEST(BundleBuffer, RemoveDropsOfferEntry) {
  BundleBuffer buffer(10);
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(2));
  buffer.insert(copy_of(3));
  buffer.remove(2);
  const auto order = buffer.offer_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].id, 1u);
  EXPECT_EQ(order[1].id, 3u);
}

TEST(BundleBuffer, OfferOrderTracksEntries) {
  // The offer order always covers exactly the buffered ids, through any
  // insert / transmit / remove interleaving.
  BundleBuffer buffer(8);
  for (BundleId id = 1; id <= 8; ++id) buffer.insert(copy_of(id));
  buffer.mark_transmitted(4, 1.0);
  buffer.mark_transmitted(8, 2.0);
  buffer.remove(4);
  buffer.remove(1);
  buffer.insert(copy_of(9));
  ASSERT_EQ(buffer.offer_order().size(), buffer.size());
  for (const auto& entry : buffer.offer_order()) {
    const auto* copy = buffer.find(entry.id);
    ASSERT_NE(copy, nullptr);
    EXPECT_DOUBLE_EQ(entry.last_tx, copy->last_tx);
  }
  // Sorted: fresh tier by id, then transmitted tier by last_tx.
  SimTime prev_tx = -1.0;
  bool in_transmitted_tier = false;
  for (const auto& entry : buffer.offer_order()) {
    if (entry.last_tx >= 0.0) in_transmitted_tier = true;
    if (in_transmitted_tier) {
      EXPECT_GE(entry.last_tx, prev_tx);
      prev_tx = entry.last_tx;
    } else {
      EXPECT_LT(entry.last_tx, 0.0);
    }
  }
}

TEST(StoredBundle, TransmissionFlag) {
  StoredBundle c = copy_of(1);
  EXPECT_FALSE(c.ever_transmitted());
  c.last_tx = 10.0;
  EXPECT_TRUE(c.ever_transmitted());
}

TEST(StoredBundle, ExpiryFlag) {
  StoredBundle c = copy_of(1);
  EXPECT_FALSE(c.expires());
  c.expiry = 100.0;
  EXPECT_TRUE(c.expires());
}

}  // namespace
}  // namespace epi::dtn
