#include "dtn/buffer.hpp"

#include <gtest/gtest.h>

namespace epi::dtn {
namespace {

StoredBundle copy_of(BundleId id, std::uint32_t ec = 0,
                     SimTime stored_at = 0.0) {
  StoredBundle c;
  c.id = id;
  c.ec = ec;
  c.stored_at = stored_at;
  return c;
}

TEST(BundleBuffer, StartsEmpty) {
  const BundleBuffer buffer(10);
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer.full());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 10u);
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 0.0);
}

TEST(BundleBuffer, InsertAndFind) {
  BundleBuffer buffer(10);
  buffer.insert(copy_of(5, 3));
  EXPECT_TRUE(buffer.contains(5));
  ASSERT_NE(buffer.find(5), nullptr);
  EXPECT_EQ(buffer.find(5)->ec, 3u);
  EXPECT_EQ(buffer.find(6), nullptr);
}

TEST(BundleBuffer, ConstFind) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  const BundleBuffer& cref = buffer;
  EXPECT_NE(cref.find(1), nullptr);
  EXPECT_EQ(cref.find(2), nullptr);
}

TEST(BundleBuffer, FullAtCapacity) {
  BundleBuffer buffer(3);
  for (BundleId id = 1; id <= 3; ++id) buffer.insert(copy_of(id));
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 1.0);
}

TEST(BundleBuffer, OccupancyIsFraction) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 0.25);
  buffer.insert(copy_of(2));
  EXPECT_DOUBLE_EQ(buffer.occupancy(), 0.5);
}

TEST(BundleBuffer, RemoveReturnsCopy) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(7, 9));
  const auto removed = buffer.remove(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->ec, 9u);
  EXPECT_FALSE(buffer.contains(7));
}

TEST(BundleBuffer, RemoveMissingIsNullopt) {
  BundleBuffer buffer(4);
  EXPECT_FALSE(buffer.remove(1).has_value());
}

TEST(BundleBuffer, EntriesKeepFifoOrder) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(3));
  buffer.insert(copy_of(1));
  buffer.insert(copy_of(2));
  buffer.remove(1);
  const auto entries = buffer.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 3u);
  EXPECT_EQ(entries[1].id, 2u);
}

TEST(BundleBuffer, HighestEcEmpty) {
  const BundleBuffer buffer(4);
  EXPECT_EQ(buffer.highest_ec_bundle(), kInvalidBundle);
}

TEST(BundleBuffer, HighestEcPicksMaximum) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(1, 2));
  buffer.insert(copy_of(2, 7));
  buffer.insert(copy_of(3, 4));
  EXPECT_EQ(buffer.highest_ec_bundle(), 2u);
}

TEST(BundleBuffer, HighestEcTieBreaksToOldest) {
  BundleBuffer buffer(5);
  buffer.insert(copy_of(4, 7, 1.0));
  buffer.insert(copy_of(9, 7, 2.0));
  EXPECT_EQ(buffer.highest_ec_bundle(), 4u);
}

TEST(BundleBuffer, MutationThroughFindSticks) {
  BundleBuffer buffer(4);
  buffer.insert(copy_of(1));
  buffer.find(1)->ec = 42;
  EXPECT_EQ(buffer.find(1)->ec, 42u);
}

TEST(StoredBundle, TransmissionFlag) {
  StoredBundle c = copy_of(1);
  EXPECT_FALSE(c.ever_transmitted());
  c.last_tx = 10.0;
  EXPECT_TRUE(c.ever_transmitted());
}

TEST(StoredBundle, ExpiryFlag) {
  StoredBundle c = copy_of(1);
  EXPECT_FALSE(c.expires());
  c.expiry = 100.0;
  EXPECT_TRUE(c.expires());
}

}  // namespace
}  // namespace epi::dtn
