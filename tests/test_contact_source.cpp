// ContactSource seam tests: the TraceContactSource adapter's chunking
// contract, the owning build_contact_source() facade, and — the load-bearing
// one — streaming-vs-materialised engine equivalence across all 14 golden
// cases. The engine must produce a bit-identical RunSummary whether it is
// handed the whole trace up front or pulls the same contacts chunk by chunk.
#include "mobility/contact_source.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "golden_cases.hpp"
#include "metrics/summary.hpp"
#include "mobility/contact_trace.hpp"
#include "test_util.hpp"

namespace epi {
namespace {

using epi::test::make_trace;

TEST(TraceContactSource, WholeTraceInOneChunkByDefault) {
  const auto trace = make_trace(
      {{0, 1, 0.0, 5.0}, {1, 2, 10.0, 15.0}, {0, 2, 20.0, 25.0}});
  mobility::TraceContactSource source(trace);
  EXPECT_EQ(source.node_count(), trace.node_count());
  const auto chunk = source.next_chunk();
  ASSERT_EQ(chunk.size(), trace.size());
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_TRUE(source.next_chunk().empty());  // exhausted stays exhausted
}

TEST(TraceContactSource, ChunkedIterationCoversTraceInOrder) {
  const auto trace = make_trace({{0, 1, 0.0, 5.0},
                                 {1, 2, 10.0, 15.0},
                                 {0, 2, 20.0, 25.0},
                                 {2, 3, 30.0, 35.0},
                                 {0, 3, 40.0, 45.0}});
  for (const std::size_t chunk_size : {1u, 2u, 3u, 4u, 5u, 7u}) {
    mobility::TraceContactSource source(trace, chunk_size);
    std::vector<mobility::Contact> streamed;
    for (auto chunk = source.next_chunk(); !chunk.empty();
         chunk = source.next_chunk()) {
      EXPECT_LE(chunk.size(), chunk_size);
      streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    }
    ASSERT_EQ(streamed.size(), trace.size()) << "chunk_size=" << chunk_size;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(streamed[i].a, trace[i].a);
      EXPECT_EQ(streamed[i].b, trace[i].b);
      EXPECT_DOUBLE_EQ(streamed[i].start, trace[i].start);
      EXPECT_DOUBLE_EQ(streamed[i].end, trace[i].end);
    }
  }
}

TEST(TraceContactSource, EmptyTraceIsImmediatelyExhausted) {
  const mobility::ContactTrace trace;
  mobility::TraceContactSource source(trace);
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_EQ(source.node_count(), 0u);
}

TEST(BuildContactSource, OwnsMaterialisedTraceForNonRwpKinds) {
  // The facade must keep the wrapped trace alive itself: stream the synthetic
  // Haggle scenario and check the contacts match a fresh materialisation.
  const auto spec = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(spec, 42);
  const auto source = exp::build_contact_source(spec, 42);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->node_count(), trace.node_count());
  std::vector<mobility::Contact> streamed;
  for (auto chunk = source->next_chunk(); !chunk.empty();
       chunk = source->next_chunk()) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(streamed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed[i].start, trace[i].start);
    EXPECT_DOUBLE_EQ(streamed[i].end, trace[i].end);
  }
}

// Streaming-vs-materialised equivalence on every golden pin: same scenario,
// same protocol, same seed — one run over the materialised trace, one over
// the scenario's ContactSource (the true streaming generator for rwp cases).
class StreamedGoldenRun : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(StreamedGoldenRun, MatchesMaterialisedRunBitIdentically) {
  const GoldenCase& c = GetParam();
  const bool is_rwp = std::string_view(c.scenario) == "rwp";
  const auto spec_template =
      is_rwp ? exp::rwp_scenario() : exp::trace_scenario();
  const auto trace = exp::build_contact_trace(spec_template, 42);

  exp::RunSpec spec;
  spec.protocol.kind = protocol_from_string(c.protocol);
  spec.load = c.load;
  spec.replication = c.replication;
  spec.horizon = spec_template.horizon();
  spec.session_gap = spec_template.session_gap;

  const auto materialised = exp::run_single(spec, trace);
  const auto source = exp::build_contact_source(spec_template, 42);
  const auto streamed = exp::run_single(spec, *source);
  EXPECT_TRUE(metrics::deterministic_equal(streamed, materialised));
  // Golden spot checks so a deterministic_equal definition bug cannot let a
  // divergent streamed run slip through.
  EXPECT_DOUBLE_EQ(streamed.delivery_ratio, c.delivery_ratio);
  EXPECT_EQ(streamed.contacts, c.contacts);
  EXPECT_EQ(streamed.bundle_transmissions, c.bundle_transmissions);
  EXPECT_DOUBLE_EQ(streamed.end_time, c.end_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, StreamedGoldenRun, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& param_info) {
      const GoldenCase& c = param_info.param;
      return std::string(c.scenario) + "_" + c.protocol + "_" +
             std::to_string(c.load) + "_r" + std::to_string(c.replication);
    });

}  // namespace
}  // namespace epi
