#include "mobility/contact_trace.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "mobility/contact.hpp"
#include "test_util.hpp"

namespace epi::mobility {
namespace {

using epi::test::make_trace;

TEST(Contact, DurationAndSlots) {
  const Contact c{3, 9, 3568.0, 3882.0};  // the paper's worked example
  EXPECT_DOUBLE_EQ(c.duration(), 314.0);
  EXPECT_EQ(c.slots(100.0), 3u);  // "Node 3 sends [314/100] = 3 bundles"
}

TEST(Contact, ShortContactHasZeroSlots) {
  const Contact c{0, 1, 0.0, 99.9};
  EXPECT_EQ(c.slots(100.0), 0u);
}

TEST(Contact, ExactSlotBoundary) {
  const Contact c{0, 1, 0.0, 300.0};
  EXPECT_EQ(c.slots(100.0), 3u);
}

TEST(Contact, InvolvesAndPeer) {
  const Contact c{2, 5, 0.0, 10.0};
  EXPECT_TRUE(c.involves(2));
  EXPECT_TRUE(c.involves(5));
  EXPECT_FALSE(c.involves(3));
  EXPECT_EQ(c.peer_of(2), 5u);
  EXPECT_EQ(c.peer_of(5), 2u);
}

TEST(Contact, NormalizedSwapsPair) {
  const Contact c{7, 2, 0.0, 10.0};
  const Contact n = c.normalized();
  EXPECT_EQ(n.a, 2u);
  EXPECT_EQ(n.b, 7u);
  EXPECT_DOUBLE_EQ(n.start, 0.0);
}

TEST(ContactBefore, OrdersByStartThenEndThenIds) {
  const Contact early{0, 1, 1.0, 5.0};
  const Contact late{0, 1, 2.0, 5.0};
  const Contact shorter{0, 1, 2.0, 4.0};
  ContactBefore before;
  EXPECT_TRUE(before(early, late));
  EXPECT_TRUE(before(shorter, late));
  EXPECT_FALSE(before(late, late));
}

TEST(ContactTrace, EmptyTrace) {
  const ContactTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.node_count(), 0u);
  EXPECT_DOUBLE_EQ(trace.end_time(), 0.0);
}

TEST(ContactTrace, SortsByStart) {
  const auto trace = make_trace({{0, 1, 50.0, 60.0}, {1, 2, 10.0, 20.0}});
  EXPECT_DOUBLE_EQ(trace[0].start, 10.0);
  EXPECT_DOUBLE_EQ(trace[1].start, 50.0);
}

TEST(ContactTrace, NormalizesPairs) {
  const auto trace = make_trace({{5, 2, 0.0, 10.0}});
  EXPECT_EQ(trace[0].a, 2u);
  EXPECT_EQ(trace[0].b, 5u);
}

TEST(ContactTrace, NodeCountIsMaxIdPlusOne) {
  const auto trace = make_trace({{0, 7, 0.0, 10.0}});
  EXPECT_EQ(trace.node_count(), 8u);
}

TEST(ContactTrace, RejectsSelfContact) {
  EXPECT_THROW(make_trace({{3, 3, 0.0, 10.0}}), TraceError);
}

TEST(ContactTrace, RejectsNonPositiveDuration) {
  EXPECT_THROW(make_trace({{0, 1, 10.0, 10.0}}), TraceError);
  EXPECT_THROW(make_trace({{0, 1, 10.0, 5.0}}), TraceError);
}

TEST(ContactTrace, RejectsNegativeStart) {
  EXPECT_THROW(make_trace({{0, 1, -1.0, 10.0}}), TraceError);
}

TEST(ContactTrace, EndTimeIsMaxEnd) {
  const auto trace =
      make_trace({{0, 1, 0.0, 100.0}, {1, 2, 10.0, 30.0}});
  EXPECT_DOUBLE_EQ(trace.end_time(), 100.0);
}

TEST(ContactTrace, ContactsOfFiltersAndPreservesOrder) {
  const auto trace = make_trace(
      {{0, 1, 0.0, 5.0}, {1, 2, 10.0, 15.0}, {0, 2, 20.0, 25.0}});
  const auto of1 = trace.contacts_of(1);
  ASSERT_EQ(of1.size(), 2u);
  EXPECT_DOUBLE_EQ(of1[0].start, 0.0);
  EXPECT_DOUBLE_EQ(of1[1].start, 10.0);
  EXPECT_TRUE(trace.contacts_of(9).empty());
}

TEST(ContactTrace, TruncatedKeepsEarlyStarts) {
  const auto trace = make_trace(
      {{0, 1, 0.0, 5.0}, {1, 2, 10.0, 15.0}, {0, 2, 20.0, 25.0}});
  const auto cut = trace.truncated(15.0);
  EXPECT_EQ(cut.size(), 2u);
}

TEST(ContactTrace, TruncatedClampsStraddlingContacts) {
  // Regression: a contact straddling the cutoff used to be kept at full
  // length, so the "truncated" trace still extended past the cutoff and
  // leaked post-cutoff slots into stats and fault plans.
  const auto trace = make_trace(
      {{0, 1, 0.0, 5.0}, {1, 2, 10.0, 40.0}, {0, 2, 20.0, 25.0}});
  const auto cut = trace.truncated(15.0);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut.end_time(), 15.0);
  EXPECT_DOUBLE_EQ(cut[1].start, 10.0);
  EXPECT_DOUBLE_EQ(cut[1].end, 15.0);  // clamped, not dropped
}

TEST(ContactTrace, TruncatedDropsContactsClampedToNothing) {
  // A contact starting exactly at (or a hair before) the cutoff would clamp
  // to a zero-length interval, which the ContactTrace constructor rejects —
  // it must be dropped instead.
  const auto trace = make_trace({{0, 1, 0.0, 5.0}, {1, 2, 15.0, 40.0}});
  const auto cut = trace.truncated(15.0);
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_DOUBLE_EQ(cut.end_time(), 5.0);
}

TEST(TraceStats, BasicAggregates) {
  const auto trace = make_trace(
      {{0, 1, 0.0, 100.0}, {0, 1, 200.0, 260.0}, {1, 2, 300.0, 340.0}});
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.contact_count, 3u);
  EXPECT_EQ(s.node_count, 3u);
  EXPECT_DOUBLE_EQ(s.first_start, 0.0);
  EXPECT_DOUBLE_EQ(s.last_end, 340.0);
  EXPECT_NEAR(s.mean_duration, (100.0 + 60.0 + 40.0) / 3.0, 1e-9);
  // Gaps: node0: 200; node1: 200, 100; mean = 500/3.
  EXPECT_NEAR(s.mean_inter_contact, 500.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_inter_contact, 200.0);
  // Contacts per node: node0: 2, node1: 3, node2: 1.
  EXPECT_NEAR(s.mean_contacts_per_node, 2.0, 1e-9);
}

TEST(TraceStats, QuantilesAndSlots) {
  // Durations 100, 200, 300, 400, 500 -> median 300, p90 ~500; slots
  // floor(d/100) sum = 1+2+3+4+5 = 15.
  const auto trace = make_trace({{0, 1, 0.0, 100.0},
                                 {0, 1, 1'000.0, 1'200.0},
                                 {0, 1, 2'000.0, 2'300.0},
                                 {0, 1, 3'000.0, 3'400.0},
                                 {0, 1, 4'000.0, 4'500.0}});
  const TraceStats s = trace.stats();
  EXPECT_DOUBLE_EQ(s.median_duration, 300.0);
  EXPECT_DOUBLE_EQ(s.p90_duration, 500.0);
  EXPECT_EQ(s.total_slots, 15u);
  // Inter-contact gaps (both nodes see the same): 1000 x4 per node.
  EXPECT_DOUBLE_EQ(s.median_inter_contact, 1'000.0);
}

TEST(TraceStats, SingleContactHasNoGaps) {
  const auto trace = make_trace({{0, 1, 0.0, 250.0}});
  const TraceStats s = trace.stats();
  EXPECT_DOUBLE_EQ(s.median_inter_contact, 0.0);
  EXPECT_DOUBLE_EQ(s.p90_inter_contact, 0.0);
  EXPECT_EQ(s.total_slots, 2u);
}

TEST(TraceStats, EmptyTraceIsAllZero) {
  const TraceStats s = ContactTrace{}.stats();
  EXPECT_EQ(s.contact_count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_duration, 0.0);
}

}  // namespace
}  // namespace epi::mobility
