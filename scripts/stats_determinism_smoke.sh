#!/usr/bin/env bash
# Stats-determinism smoke test: the streaming-stats profile is a pure
# function of (spec, seed), so the same figure run twice — and run again
# with a different worker-thread count — must produce byte-identical
# StatsProfile JSON. This is the CI pin for the determinism contract
# documented in src/obs/stats.hpp.
#
# Usage: stats_determinism_smoke.sh BENCH_FIGURE_BINARY [WORK_DIR]
set -euo pipefail

bench_figure=$(readlink -f "$1")
work=${2:-$(mktemp -d)}
cd "$work"

echo "== run 1 (2 worker threads) =="
"$bench_figure" --fig stats_trace --reps 2 --threads 2 --no-store \
    --stats-out run1.json >/dev/null
echo "== run 2 (2 worker threads, same spec and seed) =="
"$bench_figure" --fig stats_trace --reps 2 --threads 2 --no-store \
    --stats-out run2.json >/dev/null
echo "== run 3 (serial, same spec and seed) =="
"$bench_figure" --fig stats_trace --reps 2 --threads 1 --no-store \
    --stats-out run3.json >/dev/null

test -s run1.json
grep -q '"events":' run1.json  # profiles actually observed the runs

echo "== comparing profiles byte-for-byte =="
cmp run1.json run2.json
cmp run1.json run3.json

echo "stats determinism smoke: OK ($(wc -c <run1.json) bytes, identical across reruns and thread counts)"
