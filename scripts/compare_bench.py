#!/usr/bin/env python3
"""Compare two bench_baseline JSON files and fail on regressions.

Usage:
    compare_bench.py BASELINE.json FRESH.json [--tolerance 0.10]
                     [--counters-only] [--time-only]

Two kinds of checks, per benchmark name present in both files:

* Deterministic counters (events_processed, transfers) must match exactly —
  a mismatch means the engine's simulation behaviour changed, which is a
  hard failure regardless of tolerance. peak_queue_depth is also checked
  exactly: it is deterministic for a given scheduling strategy, and a jump
  usually means lazily scheduled work became eager again.

* Timings (ns_per_run down-is-better, events_per_sec up-is-better) may
  regress by at most --tolerance (default 0.10 = 10%). Use this on the SAME
  machine for A/B work; across machines prefer --counters-only, or a
  generous tolerance.

Benchmarks present only in the fresh file are *new* cases: they are listed
for the record but exempt from every gate (a PR adding coverage must not
fail its own gate for lack of a baseline). Benchmarks present only in the
baseline have *disappeared* — that is a hard failure: coverage silently
shrinking is exactly what a regression gate exists to catch.

Exit status: 0 clean, 1 regression / counter mismatch / disappeared case,
2 usage/input error.
"""

import argparse
import json
import sys

EXACT_COUNTERS = ("events_processed", "peak_queue_depth", "transfers",
                  # Fault-injection counters: derived from dedicated RNG
                  # streams keyed by run coordinates, so they are exactly
                  # as deterministic as the simulation itself.
                  "slots_lost", "down_slots", "control_dropped",
                  "contacts_truncated",
                  # Full-buffer refusal events: purely a function of seed and
                  # configuration, like the transfers they failed to become.
                  "transfers_refused_full",
                  # Summary-codec signaling counters: advertisement bytes are
                  # a pure function of buffer contents and codec parameters,
                  # FP suppressions of the deterministic double-hash filter.
                  "summary_exchanges", "summary_ad_bytes", "control_bytes",
                  "transfers_suppressed_fp")


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if data.get("suite") != "engine_baseline" or "benchmarks" not in data:
        sys.exit(f"error: {path} is not a bench_baseline file")
    return {b["name"]: b for b in data["benchmarks"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional timing regression "
                             "(default 0.10)")
    parser.add_argument("--counters-only", action="store_true",
                        help="skip timing checks (machine-independent mode)")
    parser.add_argument("--time-only", action="store_true",
                        help="skip counter checks")
    args = parser.parse_args()
    if args.counters_only and args.time_only:
        parser.error("--counters-only and --time-only are mutually exclusive")

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    common = [name for name in baseline if name in fresh]
    if not common:
        sys.exit("error: no common benchmarks between the two files")
    new = sorted(set(fresh) - set(baseline))
    if new:
        print(f"note: {len(new)} new case(s) without a baseline (exempt "
              f"from gates): {', '.join(new)}")

    failures = []
    for name in sorted(set(baseline) - set(fresh)):
        failures.append(
            f"{name}: present in baseline but missing from fresh run "
            f"(benchmark coverage must not shrink)")
    for name in common:
        b, f = baseline[name], fresh[name]
        if not args.time_only:
            for counter in EXACT_COUNTERS:
                if counter not in b:
                    continue  # baseline predates this counter: no gate yet
                if b.get(counter) != f.get(counter):
                    failures.append(
                        f"{name}: {counter} changed "
                        f"{b.get(counter)} -> {f.get(counter)} "
                        f"(deterministic counter; exact match required)")
        if not args.counters_only:
            ns_b, ns_f = b["ns_per_run"], f["ns_per_run"]
            if ns_b > 0 and ns_f > ns_b * (1.0 + args.tolerance):
                failures.append(
                    f"{name}: ns_per_run regressed {ns_b:.0f} -> {ns_f:.0f} "
                    f"(+{100.0 * (ns_f / ns_b - 1.0):.1f}%, "
                    f"tolerance {100.0 * args.tolerance:.0f}%)")
            ev_b, ev_f = b["events_per_sec"], f["events_per_sec"]
            if ev_b > 0 and ev_f < ev_b * (1.0 - args.tolerance):
                failures.append(
                    f"{name}: events_per_sec regressed {ev_b:.0f} -> "
                    f"{ev_f:.0f} "
                    f"(-{100.0 * (1.0 - ev_f / ev_b):.1f}%, "
                    f"tolerance {100.0 * args.tolerance:.0f}%)")

    checked = "counters" if args.counters_only else (
        "timings" if args.time_only else "counters + timings")
    if failures:
        print(f"FAIL: {len(failures)} regression(s) across {len(common)} "
              f"benchmark(s) ({checked}):")
        for line in failures:
            print(f"  {line}")
        sys.exit(1)
    print(f"OK: {len(common)} benchmark(s) within limits ({checked})")


if __name__ == "__main__":
    main()
