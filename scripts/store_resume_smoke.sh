#!/usr/bin/env bash
# Store-resume smoke test: SIGKILL a sweep mid-flight, rerun it, and prove
#   1. the rerun resumes from the persistent run store (simulates only the
#      missing runs),
#   2. the resumed figure JSON is byte-identical to an uninterrupted run,
#   3. a third, fully-cached rerun does zero simulation work.
#
# Usage: store_resume_smoke.sh BENCH_EXPORT_BINARY [WORK_DIR]
set -euo pipefail

bench_export=$(readlink -f "$1")
work=${2:-$(mktemp -d)}
reps=30         # enough work that a 1-second SIGKILL lands mid-sweep
kill_after=1

mkdir -p "$work/ref" "$work/resume"

echo "== reference run (uninterrupted) =="
(cd "$work/ref" && "$bench_export" --reps "$reps" --store=store >/dev/null)

echo "== interrupted run (SIGKILL after ${kill_after}s) =="
set +e
(cd "$work/resume" &&
 timeout -s KILL "$kill_after" "$bench_export" --reps "$reps" --store=store \
     >/dev/null 2>&1)
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "error: expected the run to be SIGKILLed (exit 137), got $status" >&2
  echo "hint: raise reps so the run outlives the kill timer" >&2
  exit 1
fi
partial=$(cat "$work/resume/store/"seg-*.jsonl | wc -l)
echo "persisted $partial record(s) before the kill"
if [ "$partial" -eq 0 ]; then
  echo "error: the killed run persisted nothing" >&2
  exit 1
fi

echo "== resumed run =="
resume_stats=$(cd "$work/resume" &&
  "$bench_export" --reps "$reps" --store=store --store-stats |
  grep -F '[store]')
echo "$resume_stats"
case "$resume_stats" in
  *" 0 simulated"*)
    echo "error: the resumed run simulated nothing — the kill landed after" \
         "completion, so this proved nothing; raise reps" >&2
    exit 1 ;;
esac
case "$resume_stats" in
  *" 0 cached"*)
    echo "error: the resumed run served nothing from the store" >&2
    exit 1 ;;
esac

echo "== comparing figure JSON byte-for-byte =="
count=0
for f in "$work/ref/results/"*.json; do
  name=$(basename "$f")
  cmp "$f" "$work/resume/results/$name"
  count=$((count + 1))
done
echo "$count figure file(s) byte-identical"

echo "== fully-cached rerun must do zero simulation =="
cached_stats=$(cd "$work/resume" &&
  "$bench_export" --reps "$reps" --store=store --store-stats |
  grep -F '[store]')
echo "$cached_stats"
case "$cached_stats" in
  *" 0 simulated, 0 appended"*) ;;
  *)
    echo "error: fully-cached rerun still simulated something" >&2
    exit 1 ;;
esac

echo "store resume smoke: OK"
