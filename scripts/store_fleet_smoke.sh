#!/usr/bin/env bash
# Fleet smoke test for the sharded run store + multi-process sweep driver:
#
#   1. `bench_figure --all --jobs 2` on a cold shared store produces figure
#      JSON byte-identical to a single-process, single-thread reference.
#   2. Two CONCURRENT invocations sharing one store partition the figures
#      via claims; SIGKILL one mid-run and the survivor adopts its units
#      and still completes every figure, byte-identical to the reference.
#   3. Rerunning the killed invocation resumes from the store (its missing
#      outputs appear, again byte-identical).
#   4. `store_tool merge` unions the independently produced stores; a rerun
#      against the merged store does zero simulation work.
#
# Usage: store_fleet_smoke.sh BENCH_FIGURE_BINARY STORE_TOOL_BINARY [WORK_DIR]
set -euo pipefail

bench_figure=$(readlink -f "$1")
store_tool=$(readlink -f "$2")
work=${3:-$(mktemp -d)}
figs=${FIGS:-fig07,fig08,robust_trace_delay}
reps=${REPS:-30}          # enough work that the SIGKILL lands mid-sweep
kill_after=${KILL_AFTER:-2}

mkdir -p "$work"
cd "$work"

compare_figs() {  # compare_figs DIR — byte-compare every figure JSON vs ref
  local count=0 id
  for id in ${figs//,/ }; do
    cmp "ref/$id.json" "$1/$id.json"
    count=$((count + 1))
  done
  echo "$1: $count figure file(s) byte-identical to the reference"
}

echo "== stage 0: serial reference (--jobs 1 --threads 1) =="
"$bench_figure" --all --only "$figs" --jobs 1 --threads 1 --reps "$reps" \
    --out ref --store store_ref >/dev/null

echo "== stage 1: cold two-process fleet (--jobs 2) =="
"$bench_figure" --all --only "$figs" --jobs 2 --reps "$reps" \
    --out par --store store_par >/dev/null 2>&1
compare_figs par

echo "== stage 2: concurrent invocations, SIGKILL one mid-run =="
"$bench_figure" --all --only "$figs" --jobs 1 --threads 2 --reps "$reps" \
    --out out_a --store store_shared >/dev/null 2>&1 &
victim=$!
"$bench_figure" --all --only "$figs" --jobs 1 --threads 2 --reps "$reps" \
    --out out_b --store store_shared >/dev/null 2>&1 &
survivor=$!
sleep "$kill_after"
if ! kill -9 "$victim" 2>/dev/null; then
  echo "error: the victim finished before the kill landed; raise REPS" >&2
  kill -9 "$survivor" 2>/dev/null || true
  exit 1
fi
wait "$victim" 2>/dev/null || true
if ! wait "$survivor"; then
  echo "error: the surviving invocation failed" >&2
  exit 1
fi
compare_figs out_b

echo "== stage 3: rerun the killed invocation (resumes from the store) =="
"$bench_figure" --all --only "$figs" --jobs 1 --threads 2 --reps "$reps" \
    --out out_a --store store_shared >/dev/null 2>&1
compare_figs out_a

echo "== stage 4: merge the stores, then a zero-work cached rerun =="
"$store_tool" merge store_merged store_ref store_par store_shared
"$store_tool" stats store_merged
merged_stats=$("$bench_figure" --all --only "$figs" --jobs 1 --threads 1 \
    --reps "$reps" --out out_merged --store store_merged --store-stats |
  grep -F '[store]')
echo "$merged_stats"
case "$merged_stats" in
  *" 0 simulated, 0 appended"*) ;;
  *)
    echo "error: rerun against the merged store still simulated something" >&2
    exit 1 ;;
esac
compare_figs out_merged

echo "store fleet smoke: OK"
