file(REMOVE_RECURSE
  "CMakeFiles/epi_metrics.dir/recorder.cpp.o"
  "CMakeFiles/epi_metrics.dir/recorder.cpp.o.d"
  "CMakeFiles/epi_metrics.dir/summary.cpp.o"
  "CMakeFiles/epi_metrics.dir/summary.cpp.o.d"
  "libepi_metrics.a"
  "libepi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
