file(REMOVE_RECURSE
  "libepi_metrics.a"
)
