# Empty dependencies file for epi_metrics.
# This may be replaced when dependencies are built.
