# Empty compiler generated dependencies file for epi_routing.
# This may be replaced when dependencies are built.
