file(REMOVE_RECURSE
  "libepi_routing.a"
)
