
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/anti_packet_base.cpp" "src/routing/CMakeFiles/epi_routing.dir/anti_packet_base.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/anti_packet_base.cpp.o.d"
  "/root/repo/src/routing/baselines.cpp" "src/routing/CMakeFiles/epi_routing.dir/baselines.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/baselines.cpp.o.d"
  "/root/repo/src/routing/cumulative_immunity.cpp" "src/routing/CMakeFiles/epi_routing.dir/cumulative_immunity.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/cumulative_immunity.cpp.o.d"
  "/root/repo/src/routing/ec_epidemic.cpp" "src/routing/CMakeFiles/epi_routing.dir/ec_epidemic.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/ec_epidemic.cpp.o.d"
  "/root/repo/src/routing/engine.cpp" "src/routing/CMakeFiles/epi_routing.dir/engine.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/engine.cpp.o.d"
  "/root/repo/src/routing/factory.cpp" "src/routing/CMakeFiles/epi_routing.dir/factory.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/factory.cpp.o.d"
  "/root/repo/src/routing/pq_epidemic.cpp" "src/routing/CMakeFiles/epi_routing.dir/pq_epidemic.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/pq_epidemic.cpp.o.d"
  "/root/repo/src/routing/protocol.cpp" "src/routing/CMakeFiles/epi_routing.dir/protocol.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/protocol.cpp.o.d"
  "/root/repo/src/routing/ttl_epidemic.cpp" "src/routing/CMakeFiles/epi_routing.dir/ttl_epidemic.cpp.o" "gcc" "src/routing/CMakeFiles/epi_routing.dir/ttl_epidemic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/epi_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/epi_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epi_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
