file(REMOVE_RECURSE
  "CMakeFiles/epi_routing.dir/anti_packet_base.cpp.o"
  "CMakeFiles/epi_routing.dir/anti_packet_base.cpp.o.d"
  "CMakeFiles/epi_routing.dir/baselines.cpp.o"
  "CMakeFiles/epi_routing.dir/baselines.cpp.o.d"
  "CMakeFiles/epi_routing.dir/cumulative_immunity.cpp.o"
  "CMakeFiles/epi_routing.dir/cumulative_immunity.cpp.o.d"
  "CMakeFiles/epi_routing.dir/ec_epidemic.cpp.o"
  "CMakeFiles/epi_routing.dir/ec_epidemic.cpp.o.d"
  "CMakeFiles/epi_routing.dir/engine.cpp.o"
  "CMakeFiles/epi_routing.dir/engine.cpp.o.d"
  "CMakeFiles/epi_routing.dir/factory.cpp.o"
  "CMakeFiles/epi_routing.dir/factory.cpp.o.d"
  "CMakeFiles/epi_routing.dir/pq_epidemic.cpp.o"
  "CMakeFiles/epi_routing.dir/pq_epidemic.cpp.o.d"
  "CMakeFiles/epi_routing.dir/protocol.cpp.o"
  "CMakeFiles/epi_routing.dir/protocol.cpp.o.d"
  "CMakeFiles/epi_routing.dir/ttl_epidemic.cpp.o"
  "CMakeFiles/epi_routing.dir/ttl_epidemic.cpp.o.d"
  "libepi_routing.a"
  "libepi_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
