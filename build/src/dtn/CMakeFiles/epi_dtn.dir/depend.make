# Empty dependencies file for epi_dtn.
# This may be replaced when dependencies are built.
