file(REMOVE_RECURSE
  "libepi_dtn.a"
)
