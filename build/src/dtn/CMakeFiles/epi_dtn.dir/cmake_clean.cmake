file(REMOVE_RECURSE
  "CMakeFiles/epi_dtn.dir/buffer.cpp.o"
  "CMakeFiles/epi_dtn.dir/buffer.cpp.o.d"
  "CMakeFiles/epi_dtn.dir/immunity.cpp.o"
  "CMakeFiles/epi_dtn.dir/immunity.cpp.o.d"
  "CMakeFiles/epi_dtn.dir/summary_vector.cpp.o"
  "CMakeFiles/epi_dtn.dir/summary_vector.cpp.o.d"
  "libepi_dtn.a"
  "libepi_dtn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_dtn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
