
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtn/buffer.cpp" "src/dtn/CMakeFiles/epi_dtn.dir/buffer.cpp.o" "gcc" "src/dtn/CMakeFiles/epi_dtn.dir/buffer.cpp.o.d"
  "/root/repo/src/dtn/immunity.cpp" "src/dtn/CMakeFiles/epi_dtn.dir/immunity.cpp.o" "gcc" "src/dtn/CMakeFiles/epi_dtn.dir/immunity.cpp.o.d"
  "/root/repo/src/dtn/summary_vector.cpp" "src/dtn/CMakeFiles/epi_dtn.dir/summary_vector.cpp.o" "gcc" "src/dtn/CMakeFiles/epi_dtn.dir/summary_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/epi_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
