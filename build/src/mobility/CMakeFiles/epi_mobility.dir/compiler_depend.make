# Empty compiler generated dependencies file for epi_mobility.
# This may be replaced when dependencies are built.
