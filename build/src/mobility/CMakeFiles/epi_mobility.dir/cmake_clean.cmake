file(REMOVE_RECURSE
  "CMakeFiles/epi_mobility.dir/contact_trace.cpp.o"
  "CMakeFiles/epi_mobility.dir/contact_trace.cpp.o.d"
  "CMakeFiles/epi_mobility.dir/interval_scenario.cpp.o"
  "CMakeFiles/epi_mobility.dir/interval_scenario.cpp.o.d"
  "CMakeFiles/epi_mobility.dir/rwp.cpp.o"
  "CMakeFiles/epi_mobility.dir/rwp.cpp.o.d"
  "CMakeFiles/epi_mobility.dir/synthetic_haggle.cpp.o"
  "CMakeFiles/epi_mobility.dir/synthetic_haggle.cpp.o.d"
  "CMakeFiles/epi_mobility.dir/trace_io.cpp.o"
  "CMakeFiles/epi_mobility.dir/trace_io.cpp.o.d"
  "libepi_mobility.a"
  "libepi_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
