
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/contact_trace.cpp" "src/mobility/CMakeFiles/epi_mobility.dir/contact_trace.cpp.o" "gcc" "src/mobility/CMakeFiles/epi_mobility.dir/contact_trace.cpp.o.d"
  "/root/repo/src/mobility/interval_scenario.cpp" "src/mobility/CMakeFiles/epi_mobility.dir/interval_scenario.cpp.o" "gcc" "src/mobility/CMakeFiles/epi_mobility.dir/interval_scenario.cpp.o.d"
  "/root/repo/src/mobility/rwp.cpp" "src/mobility/CMakeFiles/epi_mobility.dir/rwp.cpp.o" "gcc" "src/mobility/CMakeFiles/epi_mobility.dir/rwp.cpp.o.d"
  "/root/repo/src/mobility/synthetic_haggle.cpp" "src/mobility/CMakeFiles/epi_mobility.dir/synthetic_haggle.cpp.o" "gcc" "src/mobility/CMakeFiles/epi_mobility.dir/synthetic_haggle.cpp.o.d"
  "/root/repo/src/mobility/trace_io.cpp" "src/mobility/CMakeFiles/epi_mobility.dir/trace_io.cpp.o" "gcc" "src/mobility/CMakeFiles/epi_mobility.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/epi_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
