file(REMOVE_RECURSE
  "libepi_mobility.a"
)
