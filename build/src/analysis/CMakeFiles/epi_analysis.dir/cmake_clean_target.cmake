file(REMOVE_RECURSE
  "libepi_analysis.a"
)
