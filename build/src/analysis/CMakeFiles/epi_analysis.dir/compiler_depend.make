# Empty compiler generated dependencies file for epi_analysis.
# This may be replaced when dependencies are built.
