file(REMOVE_RECURSE
  "CMakeFiles/epi_analysis.dir/reachability.cpp.o"
  "CMakeFiles/epi_analysis.dir/reachability.cpp.o.d"
  "libepi_analysis.a"
  "libepi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
