# Empty compiler generated dependencies file for epi_exp.
# This may be replaced when dependencies are built.
