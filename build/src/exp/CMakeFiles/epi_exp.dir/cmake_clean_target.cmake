file(REMOVE_RECURSE
  "libepi_exp.a"
)
