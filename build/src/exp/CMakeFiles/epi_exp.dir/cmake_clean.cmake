file(REMOVE_RECURSE
  "CMakeFiles/epi_exp.dir/figures.cpp.o"
  "CMakeFiles/epi_exp.dir/figures.cpp.o.d"
  "CMakeFiles/epi_exp.dir/report.cpp.o"
  "CMakeFiles/epi_exp.dir/report.cpp.o.d"
  "CMakeFiles/epi_exp.dir/runner.cpp.o"
  "CMakeFiles/epi_exp.dir/runner.cpp.o.d"
  "CMakeFiles/epi_exp.dir/scenario.cpp.o"
  "CMakeFiles/epi_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/epi_exp.dir/sweep.cpp.o"
  "CMakeFiles/epi_exp.dir/sweep.cpp.o.d"
  "CMakeFiles/epi_exp.dir/thread_pool.cpp.o"
  "CMakeFiles/epi_exp.dir/thread_pool.cpp.o.d"
  "libepi_exp.a"
  "libepi_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
