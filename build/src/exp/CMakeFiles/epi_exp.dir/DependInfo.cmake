
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/figures.cpp" "src/exp/CMakeFiles/epi_exp.dir/figures.cpp.o" "gcc" "src/exp/CMakeFiles/epi_exp.dir/figures.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/epi_exp.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/epi_exp.dir/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/exp/CMakeFiles/epi_exp.dir/runner.cpp.o" "gcc" "src/exp/CMakeFiles/epi_exp.dir/runner.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/exp/CMakeFiles/epi_exp.dir/scenario.cpp.o" "gcc" "src/exp/CMakeFiles/epi_exp.dir/scenario.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/exp/CMakeFiles/epi_exp.dir/sweep.cpp.o" "gcc" "src/exp/CMakeFiles/epi_exp.dir/sweep.cpp.o.d"
  "/root/repo/src/exp/thread_pool.cpp" "src/exp/CMakeFiles/epi_exp.dir/thread_pool.cpp.o" "gcc" "src/exp/CMakeFiles/epi_exp.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/epi_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/epi_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epi_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/epi_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
