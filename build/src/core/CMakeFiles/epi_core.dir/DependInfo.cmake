
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/epi_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/epi_core.dir/config.cpp.o.d"
  "/root/repo/src/core/event_queue.cpp" "src/core/CMakeFiles/epi_core.dir/event_queue.cpp.o" "gcc" "src/core/CMakeFiles/epi_core.dir/event_queue.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/epi_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/epi_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/epi_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/epi_core.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
