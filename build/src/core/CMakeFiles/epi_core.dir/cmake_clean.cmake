file(REMOVE_RECURSE
  "CMakeFiles/epi_core.dir/config.cpp.o"
  "CMakeFiles/epi_core.dir/config.cpp.o.d"
  "CMakeFiles/epi_core.dir/event_queue.cpp.o"
  "CMakeFiles/epi_core.dir/event_queue.cpp.o.d"
  "CMakeFiles/epi_core.dir/rng.cpp.o"
  "CMakeFiles/epi_core.dir/rng.cpp.o.d"
  "CMakeFiles/epi_core.dir/simulator.cpp.o"
  "CMakeFiles/epi_core.dir/simulator.cpp.o.d"
  "libepi_core.a"
  "libepi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
