# Empty dependencies file for epi_core.
# This may be replaced when dependencies are built.
