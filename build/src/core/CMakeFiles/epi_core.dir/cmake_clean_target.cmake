file(REMOVE_RECURSE
  "libepi_core.a"
)
