file(REMOVE_RECURSE
  "../bench/bench_fig09"
  "../bench/bench_fig09.pdb"
  "CMakeFiles/bench_fig09.dir/bench_fig09.cpp.o"
  "CMakeFiles/bench_fig09.dir/bench_fig09.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
