# Empty compiler generated dependencies file for bench_fig09.
# This may be replaced when dependencies are built.
