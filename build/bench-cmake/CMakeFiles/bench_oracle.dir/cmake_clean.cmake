file(REMOVE_RECURSE
  "../bench/bench_oracle"
  "../bench/bench_oracle.pdb"
  "CMakeFiles/bench_oracle.dir/bench_oracle.cpp.o"
  "CMakeFiles/bench_oracle.dir/bench_oracle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
