# Empty dependencies file for bench_ablation_ttl.
# This may be replaced when dependencies are built.
