file(REMOVE_RECURSE
  "../bench/bench_ablation_ttl"
  "../bench/bench_ablation_ttl.pdb"
  "CMakeFiles/bench_ablation_ttl.dir/bench_ablation_ttl.cpp.o"
  "CMakeFiles/bench_ablation_ttl.dir/bench_ablation_ttl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
