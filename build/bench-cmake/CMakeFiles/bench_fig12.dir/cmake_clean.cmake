file(REMOVE_RECURSE
  "../bench/bench_fig12"
  "../bench/bench_fig12.pdb"
  "CMakeFiles/bench_fig12.dir/bench_fig12.cpp.o"
  "CMakeFiles/bench_fig12.dir/bench_fig12.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
