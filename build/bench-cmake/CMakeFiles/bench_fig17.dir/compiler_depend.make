# Empty compiler generated dependencies file for bench_fig17.
# This may be replaced when dependencies are built.
