# Empty dependencies file for bench_fig19.
# This may be replaced when dependencies are built.
