file(REMOVE_RECURSE
  "../bench/bench_fig19"
  "../bench/bench_fig19.pdb"
  "CMakeFiles/bench_fig19.dir/bench_fig19.cpp.o"
  "CMakeFiles/bench_fig19.dir/bench_fig19.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
