# Empty dependencies file for bench_fig18.
# This may be replaced when dependencies are built.
