file(REMOVE_RECURSE
  "../bench/bench_fig18"
  "../bench/bench_fig18.pdb"
  "CMakeFiles/bench_fig18.dir/bench_fig18.cpp.o"
  "CMakeFiles/bench_fig18.dir/bench_fig18.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
