file(REMOVE_RECURSE
  "../bench/bench_ablation_pq"
  "../bench/bench_ablation_pq.pdb"
  "CMakeFiles/bench_ablation_pq.dir/bench_ablation_pq.cpp.o"
  "CMakeFiles/bench_ablation_pq.dir/bench_ablation_pq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
