# Empty compiler generated dependencies file for bench_ablation_pq.
# This may be replaced when dependencies are built.
