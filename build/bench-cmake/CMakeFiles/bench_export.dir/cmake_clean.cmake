file(REMOVE_RECURSE
  "../bench/bench_export"
  "../bench/bench_export.pdb"
  "CMakeFiles/bench_export.dir/bench_export.cpp.o"
  "CMakeFiles/bench_export.dir/bench_export.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
