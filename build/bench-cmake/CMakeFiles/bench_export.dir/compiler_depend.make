# Empty compiler generated dependencies file for bench_export.
# This may be replaced when dependencies are built.
