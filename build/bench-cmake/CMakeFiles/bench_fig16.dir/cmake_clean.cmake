file(REMOVE_RECURSE
  "../bench/bench_fig16"
  "../bench/bench_fig16.pdb"
  "CMakeFiles/bench_fig16.dir/bench_fig16.cpp.o"
  "CMakeFiles/bench_fig16.dir/bench_fig16.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
