# Empty dependencies file for bench_fig16.
# This may be replaced when dependencies are built.
