file(REMOVE_RECURSE
  "../bench/bench_scenarios"
  "../bench/bench_scenarios.pdb"
  "CMakeFiles/bench_scenarios.dir/bench_scenarios.cpp.o"
  "CMakeFiles/bench_scenarios.dir/bench_scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
