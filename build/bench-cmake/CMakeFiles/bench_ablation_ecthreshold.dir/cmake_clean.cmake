file(REMOVE_RECURSE
  "../bench/bench_ablation_ecthreshold"
  "../bench/bench_ablation_ecthreshold.pdb"
  "CMakeFiles/bench_ablation_ecthreshold.dir/bench_ablation_ecthreshold.cpp.o"
  "CMakeFiles/bench_ablation_ecthreshold.dir/bench_ablation_ecthreshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecthreshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
