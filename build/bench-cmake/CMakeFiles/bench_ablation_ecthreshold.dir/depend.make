# Empty dependencies file for bench_ablation_ecthreshold.
# This may be replaced when dependencies are built.
