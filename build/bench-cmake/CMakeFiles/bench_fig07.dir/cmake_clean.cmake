file(REMOVE_RECURSE
  "../bench/bench_fig07"
  "../bench/bench_fig07.pdb"
  "CMakeFiles/bench_fig07.dir/bench_fig07.cpp.o"
  "CMakeFiles/bench_fig07.dir/bench_fig07.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
