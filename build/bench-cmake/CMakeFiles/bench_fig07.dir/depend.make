# Empty dependencies file for bench_fig07.
# This may be replaced when dependencies are built.
