file(REMOVE_RECURSE
  "../bench/bench_ablation_immunity_rate"
  "../bench/bench_ablation_immunity_rate.pdb"
  "CMakeFiles/bench_ablation_immunity_rate.dir/bench_ablation_immunity_rate.cpp.o"
  "CMakeFiles/bench_ablation_immunity_rate.dir/bench_ablation_immunity_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_immunity_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
