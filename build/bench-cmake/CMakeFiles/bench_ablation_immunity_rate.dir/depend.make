# Empty dependencies file for bench_ablation_immunity_rate.
# This may be replaced when dependencies are built.
