# Empty dependencies file for bench_fig08.
# This may be replaced when dependencies are built.
