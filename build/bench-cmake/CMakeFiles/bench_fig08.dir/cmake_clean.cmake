file(REMOVE_RECURSE
  "../bench/bench_fig08"
  "../bench/bench_fig08.pdb"
  "CMakeFiles/bench_fig08.dir/bench_fig08.cpp.o"
  "CMakeFiles/bench_fig08.dir/bench_fig08.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
