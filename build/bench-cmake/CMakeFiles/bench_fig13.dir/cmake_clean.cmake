file(REMOVE_RECURSE
  "../bench/bench_fig13"
  "../bench/bench_fig13.pdb"
  "CMakeFiles/bench_fig13.dir/bench_fig13.cpp.o"
  "CMakeFiles/bench_fig13.dir/bench_fig13.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
