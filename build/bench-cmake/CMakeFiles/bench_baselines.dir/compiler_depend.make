# Empty compiler generated dependencies file for bench_baselines.
# This may be replaced when dependencies are built.
