# Empty compiler generated dependencies file for bench_fig20.
# This may be replaced when dependencies are built.
