file(REMOVE_RECURSE
  "../bench/bench_fig20"
  "../bench/bench_fig20.pdb"
  "CMakeFiles/bench_fig20.dir/bench_fig20.cpp.o"
  "CMakeFiles/bench_fig20.dir/bench_fig20.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
