# Empty dependencies file for bench_fig15.
# This may be replaced when dependencies are built.
