file(REMOVE_RECURSE
  "../bench/bench_fig14"
  "../bench/bench_fig14.pdb"
  "CMakeFiles/bench_fig14.dir/bench_fig14.cpp.o"
  "CMakeFiles/bench_fig14.dir/bench_fig14.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
