file(REMOVE_RECURSE
  "../bench/bench_overhead"
  "../bench/bench_overhead.pdb"
  "CMakeFiles/bench_overhead.dir/bench_overhead.cpp.o"
  "CMakeFiles/bench_overhead.dir/bench_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
