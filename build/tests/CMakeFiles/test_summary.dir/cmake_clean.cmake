file(REMOVE_RECURSE
  "CMakeFiles/test_summary.dir/test_summary.cpp.o"
  "CMakeFiles/test_summary.dir/test_summary.cpp.o.d"
  "test_summary"
  "test_summary.pdb"
  "test_summary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
