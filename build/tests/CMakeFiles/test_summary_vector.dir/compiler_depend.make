# Empty compiler generated dependencies file for test_summary_vector.
# This may be replaced when dependencies are built.
