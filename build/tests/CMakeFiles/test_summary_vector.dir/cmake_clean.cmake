file(REMOVE_RECURSE
  "CMakeFiles/test_summary_vector.dir/test_summary_vector.cpp.o"
  "CMakeFiles/test_summary_vector.dir/test_summary_vector.cpp.o.d"
  "test_summary_vector"
  "test_summary_vector.pdb"
  "test_summary_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
