# Empty compiler generated dependencies file for test_runner_sweep.
# This may be replaced when dependencies are built.
