file(REMOVE_RECURSE
  "CMakeFiles/test_runner_sweep.dir/test_runner_sweep.cpp.o"
  "CMakeFiles/test_runner_sweep.dir/test_runner_sweep.cpp.o.d"
  "test_runner_sweep"
  "test_runner_sweep.pdb"
  "test_runner_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
