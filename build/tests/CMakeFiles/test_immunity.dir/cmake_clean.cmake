file(REMOVE_RECURSE
  "CMakeFiles/test_immunity.dir/test_immunity.cpp.o"
  "CMakeFiles/test_immunity.dir/test_immunity.cpp.o.d"
  "test_immunity"
  "test_immunity.pdb"
  "test_immunity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_immunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
