# Empty dependencies file for test_immunity.
# This may be replaced when dependencies are built.
