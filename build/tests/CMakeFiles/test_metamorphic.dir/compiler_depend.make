# Empty compiler generated dependencies file for test_metamorphic.
# This may be replaced when dependencies are built.
