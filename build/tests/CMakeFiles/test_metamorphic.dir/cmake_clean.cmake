file(REMOVE_RECURSE
  "CMakeFiles/test_metamorphic.dir/test_metamorphic.cpp.o"
  "CMakeFiles/test_metamorphic.dir/test_metamorphic.cpp.o.d"
  "test_metamorphic"
  "test_metamorphic.pdb"
  "test_metamorphic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metamorphic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
