file(REMOVE_RECURSE
  "CMakeFiles/test_buffer.dir/test_buffer.cpp.o"
  "CMakeFiles/test_buffer.dir/test_buffer.cpp.o.d"
  "test_buffer"
  "test_buffer.pdb"
  "test_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
