# Empty compiler generated dependencies file for test_buffer.
# This may be replaced when dependencies are built.
