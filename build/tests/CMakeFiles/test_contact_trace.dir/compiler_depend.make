# Empty compiler generated dependencies file for test_contact_trace.
# This may be replaced when dependencies are built.
