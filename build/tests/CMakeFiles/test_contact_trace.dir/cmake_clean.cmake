file(REMOVE_RECURSE
  "CMakeFiles/test_contact_trace.dir/test_contact_trace.cpp.o"
  "CMakeFiles/test_contact_trace.dir/test_contact_trace.cpp.o.d"
  "test_contact_trace"
  "test_contact_trace.pdb"
  "test_contact_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contact_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
