file(REMOVE_RECURSE
  "CMakeFiles/test_engine_edge.dir/test_engine_edge.cpp.o"
  "CMakeFiles/test_engine_edge.dir/test_engine_edge.cpp.o.d"
  "test_engine_edge"
  "test_engine_edge.pdb"
  "test_engine_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
