# Empty compiler generated dependencies file for test_engine_edge.
# This may be replaced when dependencies are built.
