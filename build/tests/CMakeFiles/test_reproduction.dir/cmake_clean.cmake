file(REMOVE_RECURSE
  "CMakeFiles/test_reproduction.dir/test_reproduction.cpp.o"
  "CMakeFiles/test_reproduction.dir/test_reproduction.cpp.o.d"
  "test_reproduction"
  "test_reproduction.pdb"
  "test_reproduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
