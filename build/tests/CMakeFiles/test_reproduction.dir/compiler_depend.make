# Empty compiler generated dependencies file for test_reproduction.
# This may be replaced when dependencies are built.
