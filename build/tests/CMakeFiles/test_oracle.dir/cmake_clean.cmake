file(REMOVE_RECURSE
  "CMakeFiles/test_oracle.dir/test_oracle.cpp.o"
  "CMakeFiles/test_oracle.dir/test_oracle.cpp.o.d"
  "test_oracle"
  "test_oracle.pdb"
  "test_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
