# Empty dependencies file for test_oracle.
# This may be replaced when dependencies are built.
