
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/test_event_queue.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/test_event_queue.dir/test_event_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/epi_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/epi_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epi_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/epi_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/epi_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/epi_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
