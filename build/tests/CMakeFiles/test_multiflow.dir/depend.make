# Empty dependencies file for test_multiflow.
# This may be replaced when dependencies are built.
