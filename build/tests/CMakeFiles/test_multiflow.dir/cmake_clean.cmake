file(REMOVE_RECURSE
  "CMakeFiles/test_multiflow.dir/test_multiflow.cpp.o"
  "CMakeFiles/test_multiflow.dir/test_multiflow.cpp.o.d"
  "test_multiflow"
  "test_multiflow.pdb"
  "test_multiflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
