# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_contact_trace[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_summary_vector[1]_include.cmake")
include("/root/repo/build/tests/test_immunity[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_summary[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_runner_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_multiflow[1]_include.cmake")
include("/root/repo/build/tests/test_engine_edge[1]_include.cmake")
include("/root/repo/build/tests/test_metamorphic[1]_include.cmake")
