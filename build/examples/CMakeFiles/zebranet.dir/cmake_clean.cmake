file(REMOVE_RECURSE
  "CMakeFiles/zebranet.dir/zebranet.cpp.o"
  "CMakeFiles/zebranet.dir/zebranet.cpp.o.d"
  "zebranet"
  "zebranet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebranet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
