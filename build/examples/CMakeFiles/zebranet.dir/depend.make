# Empty dependencies file for zebranet.
# This may be replaced when dependencies are built.
