# Empty dependencies file for buffer_dynamics.
# This may be replaced when dependencies are built.
