file(REMOVE_RECURSE
  "CMakeFiles/buffer_dynamics.dir/buffer_dynamics.cpp.o"
  "CMakeFiles/buffer_dynamics.dir/buffer_dynamics.cpp.o.d"
  "buffer_dynamics"
  "buffer_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
