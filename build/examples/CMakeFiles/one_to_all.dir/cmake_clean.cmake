file(REMOVE_RECURSE
  "CMakeFiles/one_to_all.dir/one_to_all.cpp.o"
  "CMakeFiles/one_to_all.dir/one_to_all.cpp.o.d"
  "one_to_all"
  "one_to_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_to_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
