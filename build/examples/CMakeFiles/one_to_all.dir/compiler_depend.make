# Empty compiler generated dependencies file for one_to_all.
# This may be replaced when dependencies are built.
