file(REMOVE_RECURSE
  "CMakeFiles/custom_protocol.dir/custom_protocol.cpp.o"
  "CMakeFiles/custom_protocol.dir/custom_protocol.cpp.o.d"
  "custom_protocol"
  "custom_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
