# Empty dependencies file for custom_protocol.
# This may be replaced when dependencies are built.
