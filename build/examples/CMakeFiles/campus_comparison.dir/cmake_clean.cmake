file(REMOVE_RECURSE
  "CMakeFiles/campus_comparison.dir/campus_comparison.cpp.o"
  "CMakeFiles/campus_comparison.dir/campus_comparison.cpp.o.d"
  "campus_comparison"
  "campus_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
