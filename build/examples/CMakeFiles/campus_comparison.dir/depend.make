# Empty dependencies file for campus_comparison.
# This may be replaced when dependencies are built.
